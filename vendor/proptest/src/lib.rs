//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of the proptest 1.x API its tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range / tuple /
//! [`Just`] / [`any`] strategies, `collection::{vec, btree_set}`, the
//! `proptest!` test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test stream (seeded from the test path), and failing cases are
//! reported but **not shrunk**. Neither difference affects the property
//! suites in this workspace, which assert invariants rather than rely on
//! shrinking for diagnostics.

pub mod test_runner {
    use std::fmt;

    /// Per-`proptest!` block configuration. Only `cases` is modelled.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed property assertion (no shrinking performed).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic xoshiro256** stream used to drive value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the stream from a test path so each property gets an
        /// independent but reproducible sequence.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test path, then SplitMix64 state expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Upstream's `Strategy` produces shrinkable value trees; this stand-in
    /// generates plain values, which is all the workspace's property tests
    /// consume.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// Types with a canonical "any value" strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` — `any::<bool>()` etc.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy behind `any` for primitives.
    #[derive(Debug, Clone)]
    pub struct AnyPrimitive<T>(PhantomData<T>);

    macro_rules! any_primitive {
        ($($t:ty => $gen:expr),+ $(,)?) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(PhantomData)
                }
            }
        )+};
    }

    any_primitive!(
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| rng.next_u64() as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i32 => |rng| rng.next_u64() as i32,
        i64 => |rng| rng.next_u64() as i64,
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi, "collection size range is empty");
            self.lo + (rng.below((self.hi - self.lo) as u64) as usize)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `Vec` strategy with the given element strategy and size spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy. Duplicates are retried a bounded number of
    /// times, so the produced set may occasionally be smaller than the
    /// sampled target (upstream behaves the same way under rejection).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 16 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test harness macro. Accepts an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy,
/// ...) { body }` items. Bodies may use `prop_assert!`-family macros, which
/// abort the current case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __pt_case in 0..__pt_config.cases {
                let __pt_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(
                                &($strat),
                                &mut __pt_rng,
                            );
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = __pt_result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __pt_case + 1,
                        __pt_config.cases,
                        err,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)+), lhs, rhs),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::generate(&(-1.0f32..=1.0), &mut rng);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn collections_have_requested_shape() {
        let mut rng = TestRng::deterministic("collections");
        for _ in 0..50 {
            let v = Strategy::generate(&crate::collection::vec(0u8..4, 5usize), &mut rng);
            assert_eq!(v.len(), 5);
            let v2 = Strategy::generate(&crate::collection::vec(0u64..9, 1..4), &mut rng);
            assert!((1..4).contains(&v2.len()));
            let s = Strategy::generate(&crate::collection::btree_set(0usize..100, 0..8), &mut rng);
            assert!(s.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_everything_together(
            (n, k) in (2usize..10).prop_flat_map(|n| (Just(n), 0usize..n)),
            flag in any::<bool>(),
            xs in crate::collection::vec(-2.0f32..=2.0, 3),
        ) {
            prop_assert!(k < n);
            prop_assert_eq!(xs.len(), 3);
            let _ = flag;
        }
    }
}
