//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of the criterion 0.5 API its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Like upstream, a bench binary runs in *test mode* (one iteration per
//! bench, no measurement) unless `--bench` is on the command line — which is
//! exactly how `cargo test` vs `cargo bench` invoke `harness = false`
//! targets. In bench mode each benchmark is warmed up and sampled with
//! `std::time::Instant`, and the median ns/iter is printed. No plots, no
//! statistics beyond the median, no saved baselines.

use std::time::{Duration, Instant};

pub use core::hint::black_box;

/// Identifier for a parameterised benchmark, rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name: `&str`, `String`, [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    /// Median duration of one iteration, filled by [`iter`](Self::iter).
    result_ns: Option<f64>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the median time per call.
    /// In test mode the routine runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            black_box(routine());
            return;
        }
        // Warm up for ~20ms to size the measurement batches.
        let warmup = Duration::from_millis(20);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        // Aim for ~10ms per sample, bounded so long routines still finish.
        let batch = ((0.01 / per_iter).ceil() as u64).clamp(1, 1_000_000);
        let samples = self.sample_size.clamp(3, 100);
        let mut per_iter_ns: Vec<f64> = (0..samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        per_iter_ns.sort_by(f64::total_cmp);
        self.result_ns = Some(per_iter_ns[per_iter_ns.len() / 2]);
    }
}

fn run_bench(id: &str, measure: bool, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        measure,
        sample_size,
        result_ns: None,
    };
    f(&mut b);
    if measure {
        match b.result_ns {
            Some(ns) => println!("{id:<50} time: [{ns:>12.1} ns/iter]"),
            None => println!("{id:<50} (no measurement recorded)"),
        }
    }
}

/// Group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_bench(&full, self.criterion.measure, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.criterion.measure, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Benchmark driver. `--bench` on the command line enables measurement;
/// otherwise every bench runs once as a smoke test (matching how upstream
/// criterion behaves under `cargo test`).
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` passes both `--bench` and `--test`;
        // like upstream, `--test` wins and forces smoke mode (each bench
        // runs once, nothing is measured) so CI can exercise the harnesses
        // cheaply.
        let args: Vec<String> = std::env::args().collect();
        let has = |flag: &str| args.iter().any(|a| a == flag);
        Self {
            measure: has("--bench") && !has("--test"),
        }
    }
}

impl Criterion {
    /// Upstream parses CLI filters/options here; the stand-in's detection
    /// already happened in `default()`, so this is a no-op for drop-in use.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Whether this process is measuring (ran with `--bench`) rather than
    /// smoke-testing. Benches use this to gate expensive report emission.
    pub fn is_measuring(&self) -> bool {
        self.measure
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(&id.into_id(), self.measure, 10, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut calls = 0u32;
        let mut b = Bencher {
            measure: false,
            sample_size: 10,
            result_ns: None,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.result_ns.is_none());
    }

    #[test]
    fn measurement_records_a_positive_median() {
        let mut b = Bencher {
            measure: true,
            sample_size: 3,
            result_ns: None,
        };
        b.iter(|| black_box((0..100).sum::<u64>()));
        assert!(b.result_ns.unwrap() > 0.0);
    }

    #[test]
    fn benchmark_ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("dense", 256).id, "dense/256");
        assert_eq!(BenchmarkId::from_parameter(5).id, "5");
    }
}
