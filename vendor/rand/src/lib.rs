//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the *subset* of the rand 0.8 API it actually uses:
//! [`RngCore`], [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace never relies on the
//! exact stream, only on determinism-given-seed and sound uniform statistics
//! (both hold; see the moment tests in `tensor::init`).

use std::ops::{Range, RangeInclusive};

/// Core random-number source: the object-safe part of the API.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable via `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < span / 2^64: negligible for the span
                // sizes this workspace draws from.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods on every [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f32_standard_is_uniform_unit() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&x));
            let k = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynref: &mut dyn RngCore = &mut rng;
        let x: f32 = dynref.gen();
        assert!((0.0..1.0).contains(&x));
        let _ = dynref.gen_range(0.0f32..1.0);
    }
}
