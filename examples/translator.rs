//! A streaming translation pipeline (the paper's MT workload): sentences
//! arrive one after another, and the runtime compares the baseline, the
//! inter-cell level, the intra-cell level, and the combined system on
//! latency, energy and output agreement — the Fig. 14 story for one app.
//!
//! ```text
//! cargo run --release --example translator
//! ```

use gpu_sim::{DeviceModel, GpuDevice};
use lstm::BaselineExecutor;
use memlstm::drs::{DrsConfig, DrsMode};
use memlstm::exec::{OptimizedExecutor, OptimizerConfig};
use memlstm::mts::determine_mts;
use memlstm::prediction::NetworkPredictors;
use workloads::{Benchmark, Workload};

fn main() {
    let workload = Workload::generate(Benchmark::Mt, 6, 11);
    let net = workload.network();
    println!("translator model: {}\n", net.config());

    let device_model = DeviceModel::tegra_x1();
    let mts = determine_mts(&device_model, net.config().hidden_size, 10).mts;
    let predictors = NetworkPredictors::collect(net, workload.dataset().offline());

    let alpha_inter = 0.8;
    let alpha_intra = 0.06;
    let drs = DrsConfig {
        alpha_intra,
        mode: DrsMode::Hardware,
    };
    let schemes: Vec<(&str, Option<OptimizerConfig>)> = vec![
        ("baseline", None),
        (
            "inter-cell",
            Some(
                OptimizerConfig::builder()
                    .alpha_inter(alpha_inter)
                    .max_tissue_size(mts)
                    .build(),
            ),
        ),
        (
            "intra-cell",
            Some(OptimizerConfig::builder().drs(drs).build()),
        ),
        (
            "combined",
            Some(
                OptimizerConfig::builder()
                    .alpha_inter(alpha_inter)
                    .max_tissue_size(mts)
                    .drs(drs)
                    .build(),
            ),
        ),
    ];

    let mut device = GpuDevice::for_model(&device_model);
    let mut baseline_time = 0.0f64;
    let mut baseline_preds: Vec<usize> = Vec::new();
    println!("scheme      latency/sentence  energy/sentence  speedup  agreement");
    for (name, config) in &schemes {
        let mut time = 0.0f64;
        let mut energy = 0.0f64;
        let mut agree = 0usize;
        let mut total = 0usize;
        for (i, xs) in workload.eval_set().iter().enumerate() {
            let run = match config {
                None => BaselineExecutor::new(net).run(xs),
                Some(c) => OptimizedExecutor::new(net, &predictors, *c).run(xs),
            };
            device.reset();
            let report = device.run_trace(run.trace());
            time += report.time_s;
            energy += report.energy.total_j();
            let pred = run.predicted_class();
            if config.is_none() {
                baseline_preds.push(pred);
            } else {
                total += 1;
                if pred == baseline_preds[i] {
                    agree += 1;
                }
            }
        }
        let n = workload.eval_set().len() as f64;
        if config.is_none() {
            baseline_time = time;
        }
        println!(
            "{name:<11} {:13.1} ms {:12.1} mJ {:7.2}x  {}",
            time / n * 1e3,
            energy / n * 1e3,
            baseline_time / time,
            if total == 0 {
                "-".to_owned()
            } else {
                format!("{}/{total}", agree)
            }
        );
    }
}
