//! Model-capacity scalability (the paper's Fig. 17 / Sec. VI-D story):
//! sweep the hidden size and the sequence length of a QA model and watch
//! how the combined optimization's speedup scales — the paper's claim is
//! that the techniques scale *with* the model, because bigger weight
//! matrices reload more redundantly and longer layers divide better.
//!
//! ```text
//! cargo run --release --example capacity_sweep
//! ```

use gpu_sim::DeviceModel;
use memlstm::thresholds::Evaluator;
use workloads::{Benchmark, Workload};

fn main() {
    let base = Benchmark::Babi.model_config();
    println!("base model: {base}\n");

    println!("-- hidden-size sweep (length {}) --", base.seq_len);
    println!("hidden  MTS  speedup@<=2% loss  accuracy");
    for hidden in [128usize, 192, 256, 384] {
        let config = base.with_hidden_size(hidden);
        report(&config, hidden);
    }

    println!(
        "\n-- sequence-length sweep (hidden {}) --",
        base.hidden_size
    );
    println!("length  MTS  speedup@<=2% loss  accuracy");
    for len in [22usize, 43, 86, 129] {
        let config = base.with_seq_len(len);
        report(&config, len);
    }
}

fn report(config: &lstm::ModelConfig, label: usize) {
    let workload = Workload::generate_scaled(Benchmark::Babi, config, 3, 5);
    let evaluator = Evaluator::new(workload, DeviceModel::tegra_x1()).with_budget(1, 3);
    let points = evaluator.sweep(7);
    let ao = memlstm::thresholds::select_ao(&points);
    println!(
        "{label:6}  {:3}  {:16.2}x  {:7.1}%",
        evaluator.mts(),
        ao.speedup,
        ao.accuracy * 100.0
    );
}
