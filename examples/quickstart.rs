//! Quickstart: run one benchmark through the baseline and the combined
//! memory-friendly optimizations on the simulated Tegra X1, and print the
//! headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_sim::{DeviceModel, GpuDevice};
use lstm::BaselineExecutor;
use memlstm::drs::{DrsConfig, DrsMode};
use memlstm::exec::{OptimizedExecutor, OptimizerConfig};
use memlstm::mts::determine_mts;
use memlstm::prediction::NetworkPredictors;
use workloads::{Benchmark, Workload};

fn main() {
    // 1. Build a Table II workload: the MR sentiment model with
    //    trained-like weights and synthetic token sequences.
    let workload = Workload::generate(Benchmark::Mr, 8, 42);
    let net = workload.network();
    println!("model: {}", net.config());

    // 2. Offline phase: the maximum tissue size for this GPU (Fig. 9/10)
    //    and the predicted context link (Eq. 6).
    let device = DeviceModel::tegra_x1();
    let mts = determine_mts(&device, net.config().hidden_size, 10).mts;
    let predictors = NetworkPredictors::collect(net, workload.dataset().offline());
    println!("offline: MTS = {mts} on {}", device.config.name);

    // 3. Execute one sequence with the baseline (Algorithm 1) and with
    //    both optimization levels, pricing each on the simulated GPU.
    let xs = &workload.eval_set()[0];
    let mut gpu = GpuDevice::for_model(&device);

    let baseline = BaselineExecutor::new(net).run(xs);
    let base = gpu.run_trace(baseline.trace());

    let config = OptimizerConfig::builder()
        .alpha_inter(1.0)
        .max_tissue_size(
            // relevance threshold (per-unit)
            mts,
        )
        .drs(DrsConfig {
            alpha_intra: 0.05,
            mode: DrsMode::Hardware,
        })
        .build();
    let optimized = OptimizedExecutor::new(net, &predictors, config).run(xs);
    gpu.reset();
    let opt = gpu.run_trace(optimized.trace());

    println!(
        "baseline : {:7.3} ms, {:6.1} mJ, {:6.1} MiB DRAM traffic",
        base.time_s * 1e3,
        base.energy.total_j() * 1e3,
        base.dram_bytes() as f64 / (1024.0 * 1024.0),
    );
    println!(
        "optimized: {:7.3} ms, {:6.1} mJ, {:6.1} MiB DRAM traffic",
        opt.time_s * 1e3,
        opt.energy.total_j() * 1e3,
        opt.dram_bytes() as f64 / (1024.0 * 1024.0),
    );
    println!(
        "speedup {:.2}x, energy saving {:.1}%",
        base.time_s / opt.time_s,
        (1.0 - opt.energy.total_j() / base.energy.total_j()) * 100.0
    );

    // 4. The approximations are real arithmetic: compare predictions.
    let same = baseline.predicted_class() == optimized.predicted_class();
    println!(
        "prediction: baseline class {}, optimized class {} ({})",
        baseline.predicted_class(),
        optimized.predicted_class(),
        if same { "match" } else { "differ" }
    );
}
