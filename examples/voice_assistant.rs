//! An IPA-style interactive session: a question-answering assistant that
//! serves queries under a latency budget and adapts its thresholds to the
//! user with the UO tuner (paper Sec. VI-E).
//!
//! Each "query" is a synthetic utterance run through the BABI QA model on
//! the simulated Tegra X1; the user's satisfaction feedback (from a
//! synthetic participant profile) drives the threshold adaptation.
//!
//! ```text
//! cargo run --release --example voice_assistant
//! ```

use gpu_sim::{DeviceModel, GpuDevice};
use lstm::BaselineExecutor;
use memlstm::exec::OptimizedExecutor;
use memlstm::prediction::NetworkPredictors;
use memlstm::thresholds::{threshold_sets, Evaluator};
use memlstm::tuner::UoTuner;
use memlstm::user_study::Participant;
use tensor::init::seeded_rng;
use workloads::{Benchmark, Workload};

const QUERIES: usize = 20;

fn main() {
    // The assistant's model: BABI question answering (Table II row 3).
    let workload = Workload::generate(Benchmark::Babi, 4, 7);
    println!("assistant model: {}", workload.network().config());

    // Offline phase (shipped with the app): MTS, link predictors, and the
    // threshold-set table.
    let evaluator = Evaluator::new(workload, DeviceModel::tegra_x1()).with_budget(1, 2);
    let sets = threshold_sets(
        evaluator.upper_alpha_inter(),
        evaluator.upper_alpha_intra(),
        11,
    );
    let predictors = NetworkPredictors::collect(
        evaluator.workload().network(),
        evaluator.workload().dataset().offline(),
    );

    // Baseline latency for reference.
    let net = evaluator.workload().network();
    let mut device = GpuDevice::for_model(&DeviceModel::tegra_x1());
    let xs0 = &evaluator.workload().eval_set()[0];
    let base = device.run_trace(BaselineExecutor::new(net).run(xs0).trace());
    println!("baseline latency: {:.1} ms per query\n", base.time_s * 1e3);

    // A user with their own speed/accuracy taste, and the UO tuner that
    // learns it. Start from a mid-table (AO-ish) set.
    let mut rng = seeded_rng(99);
    let user = Participant::sample(&mut rng);
    let mut tuner = UoTuner::new(sets.len(), 4);

    println!("query  set  latency(ms)  speedup  user score");
    for q in 0..QUERIES {
        let set = tuner.current_set();
        let config = evaluator.combined_config(&sets[set]);
        let exec = OptimizedExecutor::new(net, &predictors, config);
        let xs = &evaluator.workload().eval_set()[q % evaluator.workload().eval_set().len()];
        let run = exec.run(xs);
        device.reset();
        let report = device.run_trace(run.trace());
        let speedup = base.time_s / report.time_s;
        // The replay program's satisfaction probe: the user rates speed
        // against perceived accuracy (losses under 2% are imperceptible).
        let loss_proxy = sets[set].alpha_intra as f64 * 0.12
            + sets[set].alpha_inter / evaluator.upper_alpha_inter() * 0.05;
        let score = user.rate(speedup, loss_proxy, &mut rng);
        println!(
            "{q:5}  {set:3}  {:11.1}  {speedup:6.2}x  {score:.2}",
            report.time_s * 1e3
        );
        tuner.record_feedback(score);
    }
    println!(
        "\nconverged on threshold set {} (alpha_inter {:.2}, alpha_intra {:.3}) for this user",
        tuner.best_set(),
        sets[tuner.best_set()].alpha_inter,
        sets[tuner.best_set()].alpha_intra
    );
}
